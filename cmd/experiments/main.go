// Command experiments regenerates every experiment in EXPERIMENTS.md in
// one run: the Section 5 tables, the correctness demonstrations, the
// Section 6 counts, and the performance sweeps.  Each section states what
// the paper predicts and what this implementation measures.
package main

import (
	"flag"
	"fmt"
	"sort"
	"sync"

	combining "combining"
)

var quick = flag.Bool("quick", false, "shorter simulation runs")

func section(id, title string) {
	fmt.Printf("\n===== %s — %s =====\n", id, title)
}

func main() {
	flag.Parse()
	if *bench {
		runBench()
		return
	}
	cycles := 4000
	if *quick {
		cycles = 1500
	}

	tablesT1T3()
	e1RMWImplementations()
	e2Collier()
	e4Theorem42()
	e5FullEmpty()
	e7Prefix()
	e8e9Hotspot(cycles)
	e10SimultaneousFAA()
	e11Traffic(cycles)
	e12Arithmetic()
	a1PartialCombining(cycles)
	a2Variants(cycles)
	a6Model(cycles)
	fmt.Println("\nall experiments completed")
}

func tablesT1T3() {
	section("T1–T3", "Section 5 composition tables")
	fmt.Println("regenerated and verified by `go run ./cmd/tables` (exact match)")
	// Verify silently here too.
	h, _ := combining.Compose(combining.Load{}, combining.StoreOf(1))
	if c, ok := h.(combining.Const); !ok || !c.NeedOld {
		panic("T1 violated: load∘store must be a swap")
	}
	if got := combining.ComposeBoolUnary(combining.BComp, combining.BComp); got != combining.BLoad {
		panic("T3 violated: comp∘comp must be load")
	}
	fmt.Println("spot checks: load∘store = swap ✓, comp∘comp = load ✓")
}

func e1RMWImplementations() {
	section("E1", "memory-side vs processor-side RMW (Section 2)")
	const n, perProc = 16, 20
	memSide := make([][]combining.Instr, n)
	procSide := make([][]combining.Instr, n)
	for p := 0; p < n; p++ {
		for i := 0; i < perProc; i++ {
			memSide[p] = append(memSide[p], combining.RMW(3, combining.FetchAdd(1)))
			loadIdx := len(procSide[p])
			procSide[p] = append(procSide[p],
				combining.RMW(3, combining.Load{}),
				combining.Instr{
					Addr: 3,
					DynOp: func(rep []combining.Word) combining.Mapping {
						return combining.StoreOf(rep[loadIdx].Val + 1)
					},
					After: []int{loadIdx},
				})
		}
	}
	run := func(progs [][]combining.Instr) (combining.NetStats, int64) {
		m := combining.NewMachine(combining.NetConfig{Procs: n, WaitBufCap: combining.Unbounded}, progs)
		m.Run(1000000)
		return m.Sim().Stats(), m.Sim().Memory().Peek(3).Val
	}
	st1, v1 := run(memSide)
	st2, v2 := run(procSide)
	fmt.Printf("paper: memory-side exchanges 2 messages/op and stays atomic;\n")
	fmt.Printf("       processor-side exchanges 4 and loses atomicity without a bus lock.\n")
	fmt.Printf("measured: memory-side    %4d messages, %5d cycles, counter %d/%d\n",
		st1.Issued, st1.Cycles, v1, n*perProc)
	fmt.Printf("          processor-side %4d messages, %5d cycles, counter %d/%d (lost updates)\n",
		st2.Issued, st2.Cycles, v2, n*perProc)
}

func e2Collier() {
	section("E2/E3", "Collier's example and the load-forwarding bug (Sections 3.2, 5.1)")
	fmt.Println("machine-level demonstrations live in the test suite:")
	fmt.Println("  TestCollierExample          — M2-only pipelining admits a=1,b=0 (not SC)")
	fmt.Println("  TestCollierWithFences       — the RP3 fence restores SC")
	fmt.Println("  TestLoadForwardingIncorrect — the early-reply optimization yields b=2 ∧ A=1")
	fmt.Println("  TestBuggyForwardingDetected — the Theorem 4.2 checker catches it stochastically")
}

func e4Theorem42() {
	section("E4", "Theorem 4.2 — combining executions are per-location serializable")
	// One randomized machine run with full combining, checked here.
	const n = 16
	progs := make([][]combining.Instr, n)
	for p := 0; p < n; p++ {
		for i := 0; i < 12; i++ {
			progs[p] = append(progs[p], combining.RMW(combining.Addr(i%3), combining.FetchAdd(int64(p+1))))
		}
	}
	m := combining.NewMachine(combining.NetConfig{Procs: n, WaitBufCap: combining.Unbounded, AllowReversal: true}, progs)
	m.Run(100000)
	final := map[combining.Addr]combining.Word{}
	for a := combining.Addr(0); a < 3; a++ {
		final[a] = m.Sim().Memory().Peek(a)
	}
	if err := combining.CheckM2WithFinal(m.History(), nil, final); err != nil {
		panic(err)
	}
	fmt.Printf("checked %d operations across 3 hot cells: witness serialization found ✓\n",
		m.History().Len())
	fmt.Println("(the test suite repeats this across engines, seeds, families, and wait-buffer sizes)")
}

func e5FullEmpty() {
	section("E5/E6", "full/empty bits and data-level synchronization (Sections 5.5, 5.6)")
	chain := []combining.Mapping{
		combining.FEStoreIfClearSet(1),
		combining.FELoadClear(),
		combining.FEStoreSet(2),
		combining.StoreOf(3),
		combining.FEStoreIfClearClear(4),
	}
	h, _ := combining.ComposeAll(chain...)
	t := h.(combining.Table)
	fmt.Printf("a 5-deep mixed full/empty combine carries %d store value(s); paper bound: |S| = 2\n",
		len(t.StoreValues()))
	// The paper's worst case: store-if-clear meets store-if-set — both
	// values must be forwarded, in either order.
	h2, _ := combining.ComposeAll(
		combining.FEStoreIfClear(7),
		combining.FEStoreIfSet(8),
	)
	fmt.Printf("store-if-clear combined with store-if-set carries %d store values (the tight case)\n",
		len(h2.(combining.Table).StoreValues()))
	g, err := combining.CompilePath("(open (read | write)* close)*")
	if err != nil {
		panic(err)
	}
	fmt.Printf("path expression \"(open (read|write)* close)*\" → %d-state automaton (≤ %d store values when combined)\n",
		g.States(), g.States())
}

func e7Prefix() {
	section("E7", "parallel prefix (Section 6)")
	fmt.Println("   n   | total ops (2n−2) | nontrivial (2n−2−⌈lg n⌉) | cycles (2⌈lg n⌉−2)")
	for _, n := range []int{4, 16, 64, 256, 1024} {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(i + 1)
		}
		_, _, ops := combining.RunPrefixTree(combining.IntAdd(), vals)
		s := combining.AnalyzePrefix(n)
		fmt.Printf(" %5d | %7d = %-7d | %10d = %-10d | %5d = %d\n",
			n, ops.Total, 2*(n-1),
			ops.Nontrivial, combining.PaperNontrivial(n),
			s.Makespan, combining.PaperCycles(n))
	}
	fmt.Println("(measured = formula on every row: exact reproduction)")
}

func e8e9Hotspot(cycles int) {
	section("E8", "hot-spot bandwidth collapse and recovery (Pfister–Norton)")
	fmt.Println("   N     h    | limit  | no-combining | combining")
	for _, n := range []int{16, 64, 256} {
		for _, h := range []float64{0, 0.0625, 0.125, 0.25} {
			no := combining.RunHotspot(n, 0.6, h, false, cycles, 1)
			yes := combining.RunHotspot(n, 0.6, h, true, cycles, 1)
			fmt.Printf(" %4d  %6.4f | %6.2f | %9.2f    | %8.2f   ops/cycle\n",
				n, h, combining.AsymptoticHotBandwidth(n, h),
				no.Stats.Bandwidth(), yes.Stats.Bandwidth())
		}
	}

	section("E9", "tree saturation — hot spots delay everyone")
	traffic := func(h float64) combining.TrafficConfig {
		return combining.TrafficConfig{Rate: 0.3, HotFraction: h, Window: 16}
	}
	base := combining.RunHotspotTraffic(64, traffic(0), false, cycles, 2)
	sat := combining.RunHotspotTraffic(64, traffic(0.25), false, cycles, 2)
	rel := combining.RunHotspotTraffic(64, traffic(0.25), true, cycles, 2)
	fmt.Printf("cold-traffic latency: baseline %.1f, h=0.25 no-combining %.1f (×%.2f), combining %.1f\n",
		base.Stats.ColdMeanLatency(), sat.Stats.ColdMeanLatency(),
		sat.Stats.ColdMeanLatency()/base.Stats.ColdMeanLatency(),
		rel.Stats.ColdMeanLatency())
}

func e10SimultaneousFAA() {
	section("E10", "simultaneous fetch-and-adds = parallel prefix (asynchronous engine)")
	const n, rounds = 16, 30
	net := combining.NewAsyncNet(combining.AsyncConfig{Procs: n, Combining: true})
	defer net.Close()
	var wg sync.WaitGroup
	replies := make([][]int64, n)
	for p := 0; p < n; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			port := net.Port(p)
			for r := 0; r < rounds; r++ {
				replies[p] = append(replies[p], port.FetchAdd(0, 1))
			}
		}(p)
	}
	wg.Wait()
	var all []int64
	for _, rs := range replies {
		all = append(all, rs...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	perm := true
	for i, v := range all {
		perm = perm && v == int64(i)
	}
	fmt.Printf("%d×%d concurrent FAA(X,1): final %d, replies form a permutation of 0..%d: %v\n",
		n, rounds, net.Memory().Peek(0).Val, n*rounds-1, perm)
	fmt.Printf("combining events: %d of %d requests\n", net.Combines(), n*rounds)
}

func e11Traffic(cycles int) {
	section("E11", "combining never increases value traffic (Section 5.1/5.5)")
	no := combining.RunHotspot(64, 0.6, 0.25, false, cycles, 4)
	yes := combining.RunHotspot(64, 0.6, 0.25, true, cycles, 4)
	per := func(r combining.HotspotResult, v int64) float64 {
		return float64(v) / float64(r.Stats.Completed)
	}
	fmt.Printf("per completed op at h=0.25:           no-combining   combining\n")
	fmt.Printf("  memory requests                      %8.3f     %8.3f\n",
		per(no, no.Stats.MemRequests), per(yes, yes.Stats.MemRequests))
	fmt.Printf("  forward link·value slots             %8.3f     %8.3f\n",
		per(no, no.Stats.FwdSlots), per(yes, yes.Stats.FwdSlots))
	fmt.Printf("  reverse link·value slots             %8.3f     %8.3f\n",
		per(no, no.Stats.RevSlots), per(yes, yes.Stats.RevSlots))
}

func e12Arithmetic() {
	section("E12", "arithmetic combining (Section 5.4)")
	// Exact affine combining.
	f := combining.Affine{A: 3, B: 5}
	g := combining.Affine{A: -7, B: 11}
	h, _ := combining.Compose(f, g)
	x := combining.W(123456789)
	exact := h.Apply(x) == g.Apply(f.Apply(x))
	fmt.Printf("wrap-around affine combining is bit-exact: %v\n", exact)
	fmt.Println("float64 Möbius chains with division diverge from serial evaluation")
	fmt.Println("(TestMoebiusDivisionInstability) while the exact rational family does not;")
	fmt.Println("one guard bit preserves fixed-point overflow detection (TestGuardBits).")
}

func a1PartialCombining(cycles int) {
	section("A1", "partial combining — wait-buffer capacity ablation")
	fmt.Println(" wait-buffer |  ops/cycle  combines  rejected")
	for _, cap := range []struct {
		name string
		cap  int
	}{
		{"0 (off)", 0}, {"1", 1}, {"4", 4}, {"unbounded", combining.Unbounded},
	} {
		inj := make([]combining.Injector, 64)
		for p := 0; p < 64; p++ {
			inj[p] = combining.NewStochastic(p, 64, combining.TrafficConfig{
				Rate: 0.6, HotFraction: 0.25,
			}, 5)
		}
		sim := combining.NewSim(combining.NetConfig{Procs: 64, WaitBufCap: cap.cap}, inj)
		sim.Run(cycles)
		st := sim.Stats()
		fmt.Printf(" %-11s | %9.2f  %8d  %8d\n", cap.name, st.Bandwidth(), st.Combines, st.Rejects)
	}
}

func a6Model(cycles int) {
	section("A6", "the Kruskal–Snir 1983 analytic model vs this simulator")
	fmt.Println("uniform traffic, mean round-trip latency (cycles):")
	fmt.Println(" radix   load | measured  predicted  ratio")
	for _, radix := range []int{2, 4} {
		for _, p := range []float64{0.2, 0.4, 0.6} {
			inj := make([]combining.Injector, 64)
			for q := 0; q < 64; q++ {
				inj[q] = combining.NewStochastic(q, 64, combining.TrafficConfig{Rate: p, Window: 32}, 3)
			}
			sim := combining.NewSim(combining.NetConfig{Procs: 64, Radix: radix, QueueCap: 64, WaitBufCap: 0}, inj)
			sim.Run(cycles)
			meas := sim.Stats().MeanLatency()
			pred := combining.PredictUniformLatency(64, radix, p)
			fmt.Printf("   %d    %.2f  | %7.2f   %7.2f    %.2f\n", radix, p, meas, pred, meas/pred)
		}
	}
}

func a2Variants(cycles int) {
	section("A2", "combining on other topologies (Section 7)")
	// Hypercube.
	runCube := func(comb bool) combining.CubeStats {
		waitCap := 0
		if comb {
			waitCap = combining.Unbounded
		}
		inj := make([]combining.Injector, 64)
		for p := 0; p < 64; p++ {
			inj[p] = combining.NewStochastic(p, 64, combining.TrafficConfig{
				Rate: 0.5, HotFraction: 0.25, Window: 8,
			}, 11)
		}
		sim := combining.NewCubeSim(combining.CubeConfig{Nodes: 64, WaitBufCap: waitCap}, inj)
		sim.Run(cycles)
		return sim.Stats()
	}
	cn, cy := runCube(false), runCube(true)
	fmt.Printf("hypercube (64 nodes, h=0.25): %.2f → %.2f ops/cycle, latency %.1f → %.1f\n",
		cn.Bandwidth(), cy.Bandwidth(), cn.MeanLatency(), cy.MeanLatency())

	// Bus.
	runBus := func(comb bool) combining.BusStats {
		waitCap := 0
		if comb {
			waitCap = combining.Unbounded
		}
		inj := make([]combining.Injector, 16)
		for p := 0; p < 16; p++ {
			inj[p] = combining.NewStochastic(p, 16, combining.TrafficConfig{
				Rate: 1.0, HotFraction: 0.5, Window: 4, AddrSpace: 64,
			}, 21)
		}
		sim := combining.NewBusSim(combining.BusConfig{Procs: 16, Banks: 8, WaitBufCap: waitCap}, inj)
		sim.Run(cycles)
		return sim.Stats()
	}
	bn, by := runBus(false), runBus(true)
	fmt.Printf("bus FIFO (16 procs, 8 banks, h=0.5): %.3f → %.3f ops/cycle, HOL blocking %d → %d cycles\n",
		bn.Bandwidth(), by.Bandwidth(), bn.HOLBlocked, by.HOLBlocked)
}
