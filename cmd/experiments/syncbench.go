package main

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	csync "combining/pkg/sync"
)

// The sync_primitives section of the bench baseline (experiment E18): the
// pkg/sync library primitives against their stdlib baselines, wall-clock,
// on hot-spot workloads.  Counters at a sweep of goroutine counts (the
// software image of the paper's N-processor hot spot), the MCS queue lock
// against sync.Mutex, and the tournament barrier against the idiomatic
// WaitGroup fork-join.  HostCPUs is the honesty field: on a single-core
// host the sharded counter cannot beat a bare atomic — there is no cache
// traffic to avoid — and every number is scheduler throughput, not memory
// parallelism.

// syncPoint is one wall-clock cell of the sync_primitives sweep.
type syncPoint struct {
	Primitive  string  `json:"primitive"`
	Goroutines int     `json:"goroutines"`
	TotalOps   int     `json:"total_ops"`
	ElapsedNs  int64   `json:"elapsed_ns"`
	NsPerOp    float64 `json:"ns_per_op"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	HostCPUs   int     `json:"host_cpus"`
}

// benchSyncOp times totalOps calls of op spread over g goroutines.
func benchSyncOp(primitive string, g, totalOps int, op func()) syncPoint {
	per := totalOps / g
	var wg sync.WaitGroup
	wg.Add(g)
	start := time.Now()
	for i := 0; i < g; i++ {
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				op()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	done := per * g
	return syncPoint{
		Primitive:  primitive,
		Goroutines: g,
		TotalOps:   done,
		ElapsedNs:  elapsed.Nanoseconds(),
		NsPerOp:    float64(elapsed.Nanoseconds()) / float64(done),
		OpsPerSec:  float64(done) / elapsed.Seconds(),
		HostCPUs:   runtime.NumCPU(),
	}
}

// benchSyncCounters sweeps the three counter flavours — sharded combining
// counter, bare atomic (the hot cell the shards decompose), and a
// mutex-guarded integer — across goroutine counts on one shared tally.
func benchSyncCounters(gs []int, totalOps int) []syncPoint {
	var pts []syncPoint
	for _, g := range gs {
		c := csync.NewCounter()
		pts = append(pts, benchSyncOp("counter", g, totalOps, func() { c.Add(1) }))

		var a atomic.Int64
		pts = append(pts, benchSyncOp("atomic", g, totalOps, func() { a.Add(1) }))

		var mu sync.Mutex
		var v int64
		pts = append(pts, benchSyncOp("mutex_counter", g, totalOps, func() {
			mu.Lock()
			v++
			mu.Unlock()
		}))
	}
	return pts
}

// benchSyncLocks compares the MCS queue lock against sync.Mutex on the
// same trivial critical section.
func benchSyncLocks(gs []int, totalOps int) []syncPoint {
	var pts []syncPoint
	for _, g := range gs {
		var l csync.MCSLock
		var v1 int64
		pts = append(pts, benchSyncOp("mcs_lock", g, totalOps, func() {
			q := l.Lock()
			v1++
			l.Unlock(q)
		}))

		var mu sync.Mutex
		var v2 int64
		pts = append(pts, benchSyncOp("mutex_lock", g, totalOps, func() {
			mu.Lock()
			v2++
			mu.Unlock()
		}))
	}
	return pts
}

// benchSyncBarriers times episodes of the tournament barrier at each width
// against the stdlib equivalent of one episode: forking n-1 goroutines and
// joining them with a WaitGroup.
func benchSyncBarriers(widths []int, episodes int) []syncPoint {
	var pts []syncPoint
	for _, n := range widths {
		b := csync.NewBarrier(n)
		var wg sync.WaitGroup
		wg.Add(n)
		start := time.Now()
		for w := 0; w < n; w++ {
			go func(w int) {
				defer wg.Done()
				for e := 0; e < episodes; e++ {
					b.Wait(w)
				}
			}(w)
		}
		wg.Wait()
		elapsed := time.Since(start)
		pts = append(pts, syncPoint{
			Primitive:  "tournament_barrier",
			Goroutines: n,
			TotalOps:   episodes,
			ElapsedNs:  elapsed.Nanoseconds(),
			NsPerOp:    float64(elapsed.Nanoseconds()) / float64(episodes),
			OpsPerSec:  float64(episodes) / elapsed.Seconds(),
			HostCPUs:   runtime.NumCPU(),
		})

		start = time.Now()
		for e := 0; e < episodes; e++ {
			var fj sync.WaitGroup
			fj.Add(n - 1)
			for w := 1; w < n; w++ {
				go func() { defer fj.Done() }()
			}
			fj.Wait()
		}
		elapsed = time.Since(start)
		pts = append(pts, syncPoint{
			Primitive:  "waitgroup_forkjoin",
			Goroutines: n,
			TotalOps:   episodes,
			ElapsedNs:  elapsed.Nanoseconds(),
			NsPerOp:    float64(elapsed.Nanoseconds()) / float64(episodes),
			OpsPerSec:  float64(episodes) / elapsed.Seconds(),
			HostCPUs:   runtime.NumCPU(),
		})
	}
	return pts
}

// benchSyncPrimitives assembles the whole section.
func benchSyncPrimitives(quick bool) []syncPoint {
	counterGs := []int{1, 8, 64, 512, 4096}
	counterOps := 1 << 20
	lockGs := []int{1, 8, 64, 512}
	lockOps := 1 << 18
	barrierWidths := []int{2, 4, 8, 64}
	barrierEpisodes := 5000
	if quick {
		counterGs = []int{1, 8, 64}
		counterOps = 1 << 15
		lockGs = []int{1, 8, 64}
		lockOps = 1 << 13
		barrierWidths = []int{2, 8}
		barrierEpisodes = 200
	}
	var pts []syncPoint
	pts = append(pts, benchSyncCounters(counterGs, counterOps)...)
	pts = append(pts, benchSyncLocks(lockGs, lockOps)...)
	pts = append(pts, benchSyncBarriers(barrierWidths, barrierEpisodes)...)
	return pts
}
