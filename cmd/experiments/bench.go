package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	combining "combining"
	"combining/internal/par"
)

// The -bench mode emits BENCH_combining.json — the measured baseline the
// repository commits (see EXPERIMENTS.md §Measured baselines).  Every number
// is extracted through the engines' shared Snapshot() API rather than from
// ad-hoc counters, so the file doubles as a schema test of the
// instrumentation.  `make bench` regenerates it; `make bench-smoke` runs the
// same code at small N for CI.

var (
	bench    = flag.Bool("bench", false, "emit the JSON bench baseline and exit")
	benchOut = flag.String("out", "BENCH_combining.json", "bench output path")
)

type benchReport struct {
	Schema      string             `json:"schema"`
	Quick       bool               `json:"quick"`
	Hotspot     []hotspotPoint     `json:"hotspot_sweep"`
	Permutation []permPoint        `json:"permutation_baselines"`
	AsyncFAA    []asyncPoint       `json:"asyncnet_faa"`
	Degradation []degradationPoint `json:"degradation_curve"`
	Saturation  []saturationPoint  `json:"saturation_curve"`
	Parallel    []parallelPoint    `json:"parallel_speedup"`
	Topology    []topologyPoint    `json:"topology_sweep"`
	Recovery    []recoveryPoint    `json:"recovery_curve"`
	RMEAcquire  []rmePoint         `json:"rme_acquire_latency"`
	Zipf        []zipfPoint        `json:"zipf_sweep"`
	Bursty      []burstyPoint      `json:"bursty_sweep"`
	Adversarial []adversarialPoint `json:"adversarial_degradation"`
	Barrier     []barrierPoint     `json:"barrier_microbench"`
	SyncPrims   []syncPoint        `json:"sync_primitives"`
}

// barrierPoint is one cell of the barrier microbenchmark: ns per
// episode for each internal/par implementation — counting (the original
// shared-counter spin), central sense-reversing (one flag read per
// waiter), and dissemination (log₂ n rounds of pairwise signals) — at
// each worker width, on persistent pool workers.  On a single-core host
// every number is scheduler round-trips, not cache traffic; the curve is
// only meaningful relative to HostCPUs.
type barrierPoint struct {
	Kind      string  `json:"kind"`
	Workers   int     `json:"workers"`
	Syncs     int     `json:"syncs"`
	NsPerSync float64 `json:"ns_per_sync"`
	HostCPUs  int     `json:"host_cpus"`
}

// benchBarrier times syncs barrier episodes at the given width.
func benchBarrier(kind string, workers, syncs int) barrierPoint {
	var bar par.Barrier
	switch kind {
	case "counting":
		bar = par.NewCountingBarrier(workers)
	case "sense":
		bar = par.NewSenseBarrier(workers)
	case "dissemination":
		bar = par.NewDisseminationBarrier(workers)
	default:
		panic("benchBarrier: unknown kind " + kind)
	}
	pool := par.NewPool(workers)
	pool.Start()
	defer pool.Stop()
	start := time.Now()
	pool.Run(func(w int) {
		for i := 0; i < syncs; i++ {
			bar.Sync(w)
		}
	})
	elapsed := time.Since(start)
	return barrierPoint{
		Kind:      kind,
		Workers:   workers,
		Syncs:     syncs,
		NsPerSync: float64(elapsed.Nanoseconds()) / float64(syncs),
		HostCPUs:  runtime.NumCPU(),
	}
}

// zipfPoint is one cell of the Zipfian-popularity sweep: the two-class
// hot/uniform split replaced by a power-law address distribution, so
// combining meets a graded head instead of one hot cell.  The exponent s
// sweeps from uniform-ish to hot-spot-like; rank 0 carries the hot tally.
type zipfPoint struct {
	Procs       int     `json:"procs"`
	ZipfS       float64 `json:"zipf_s"`
	ZipfN       int     `json:"zipf_n"`
	Combining   bool    `json:"combining"`
	Cycles      int     `json:"cycles"`
	Bandwidth   float64 `json:"bandwidth_ops_per_cycle"`
	MeanLatency float64 `json:"mean_latency_cycles"`
	P99Latency  float64 `json:"p99_latency_cycles"`
	Combines    int64   `json:"combines"`
	HostCPUs    int     `json:"host_cpus"`

	Snapshot combining.StatsSnapshot `json:"snapshot"`
}

// benchZipf runs one Zipfian-sweep cell on the omega network.
func benchZipf(n int, s float64, zipfN int, comb bool, cycles int) zipfPoint {
	waitCap := 0
	if comb {
		waitCap = combining.Unbounded
	}
	inj := make([]combining.Injector, n)
	for p := 0; p < n; p++ {
		inj[p] = combining.NewStochastic(p, n, combining.TrafficConfig{
			Rate: 0.6, ZipfN: zipfN, ZipfS: s,
		}, 1)
	}
	sim := combining.NewSim(combining.NetConfig{Procs: n, QueueCap: 4, WaitBufCap: waitCap}, inj)
	sim.Run(cycles)
	st := sim.Stats()
	snap := sim.Snapshot()
	return zipfPoint{
		Procs:       n,
		ZipfS:       s,
		ZipfN:       zipfN,
		Combining:   comb,
		Cycles:      cycles,
		Bandwidth:   st.Bandwidth(),
		MeanLatency: st.MeanLatency(),
		P99Latency:  st.Percentile(0.99),
		Combines:    snap.Counters["combines"],
		HostCPUs:    runtime.NumCPU(),
		Snapshot:    snap,
	}
}

// burstyPoint is one cell of the on/off burst sweep: every processor
// issues only during the first BurstOn cycles of each BurstOn+BurstOff
// period, in phase (the worst case — the whole machine slams the network
// at once, then goes quiet).  Duty cycle is held near 1/2 while the
// period sweeps, so the point isolates burst *coarseness* at fixed
// offered load.
type burstyPoint struct {
	Procs       int     `json:"procs"`
	BurstOn     int64   `json:"burst_on_cycles"`
	BurstOff    int64   `json:"burst_off_cycles"`
	Combining   bool    `json:"combining"`
	Cycles      int     `json:"cycles"`
	Bandwidth   float64 `json:"bandwidth_ops_per_cycle"`
	MeanLatency float64 `json:"mean_latency_cycles"`
	P99Latency  float64 `json:"p99_latency_cycles"`
	HostCPUs    int     `json:"host_cpus"`

	Snapshot combining.StatsSnapshot `json:"snapshot"`
}

// benchBursty runs one burst-sweep cell (on == off == 0 is the steady
// baseline).
func benchBursty(n int, on, off int64, comb bool, cycles int) burstyPoint {
	waitCap := 0
	if comb {
		waitCap = combining.Unbounded
	}
	inj := make([]combining.Injector, n)
	for p := 0; p < n; p++ {
		inj[p] = combining.NewStochastic(p, n, combining.TrafficConfig{
			Rate: 0.8, HotFraction: 0.25, BurstOn: on, BurstOff: off,
		}, 1)
	}
	sim := combining.NewSim(combining.NetConfig{Procs: n, QueueCap: 4, WaitBufCap: waitCap}, inj)
	sim.Run(cycles)
	st := sim.Stats()
	snap := sim.Snapshot()
	return burstyPoint{
		Procs:       n,
		BurstOn:     on,
		BurstOff:    off,
		Combining:   comb,
		Cycles:      cycles,
		Bandwidth:   st.Bandwidth(),
		MeanLatency: st.MeanLatency(),
		P99Latency:  st.Percentile(0.99),
		HostCPUs:    runtime.NumCPU(),
		Snapshot:    snap,
	}
}

// adversarialPoint is one cell of the E17 adversarial-degradation curve:
// hot-spot traffic while terminal links reorder, duplicate, and corrupt
// messages at the given per-hop rate, the integrity layer quarantining
// what fails its checksum and the retry/dedup machinery keeping delivery
// exactly-once.  The curve shows what end-to-end integrity costs as the
// delivery substrate turns hostile.
type adversarialPoint struct {
	Procs          int     `json:"procs"`
	HotFraction    float64 `json:"hot_fraction"`
	AdversaryRate  float64 `json:"adversary_rate_per_kind"`
	Combining      bool    `json:"combining"`
	Cycles         int     `json:"cycles"`
	Bandwidth      float64 `json:"bandwidth_ops_per_cycle"`
	MeanLatency    float64 `json:"mean_latency_cycles"`
	P99Latency     float64 `json:"p99_latency_cycles"`
	FaultsInjected int64   `json:"faults_injected"`
	ReorderedHeld  int64   `json:"reordered_held"`
	DupInjected    int64   `json:"dup_injected"`
	CorruptDropped int64   `json:"corrupt_dropped"`
	Retries        int64   `json:"retries"`
	DedupHits      int64   `json:"dedup_hits"`
	HostCPUs       int     `json:"host_cpus"`

	Snapshot combining.StatsSnapshot `json:"snapshot"`
}

// benchAdversarial runs one adversarial-degradation cell: rate arms
// reorder, duplication, and corruption equally (adversarial plans pin the
// serial stepper, which is the default here).
func benchAdversarial(n int, h, rate float64, comb bool, cycles int) adversarialPoint {
	waitCap := 0
	if comb {
		waitCap = combining.Unbounded
	}
	var plan *combining.FaultPlan
	if rate > 0 {
		plan = &combining.FaultPlan{
			Seed: 13, Reorder: rate, ReorderMax: 8, Dup: rate, Corrupt: rate,
			RetryTimeout: 512,
		}
	}
	inj := make([]combining.Injector, n)
	for p := 0; p < n; p++ {
		inj[p] = combining.NewStochastic(p, n, combining.TrafficConfig{Rate: 0.6, HotFraction: h}, 1)
	}
	sim := combining.NewSim(combining.NetConfig{Procs: n, QueueCap: 4, WaitBufCap: waitCap, Faults: plan}, inj)
	sim.Run(cycles)
	st := sim.Stats()
	snap := sim.Snapshot()
	return adversarialPoint{
		Procs:          n,
		HotFraction:    h,
		AdversaryRate:  rate,
		Combining:      comb,
		Cycles:         cycles,
		Bandwidth:      st.Bandwidth(),
		MeanLatency:    st.MeanLatency(),
		P99Latency:     st.Percentile(0.99),
		FaultsInjected: snap.Counters["faults_injected"],
		ReorderedHeld:  snap.Counters["reordered_held"],
		DupInjected:    snap.Counters["dup_injected"],
		CorruptDropped: snap.Counters["corrupt_dropped"],
		Retries:        snap.Counters["retries"],
		DedupHits:      snap.Counters["dedup_hits"],
		HostCPUs:       runtime.NumCPU(),
		Snapshot:       snap,
	}
}

// topologyPoint is one cell of the topology sweep: the same hot-spot
// workload driven through every wiring — the staged engine on omega and
// the fat-tree, the direct engine on the hypercube and the near-square
// torus — combining off and on, so the wirings are directly comparable
// under identical offered load.
type topologyPoint struct {
	Topology    string  `json:"topology"`
	Engine      string  `json:"engine"`
	Procs       int     `json:"procs"`
	HotFraction float64 `json:"hot_fraction"`
	Combining   bool    `json:"combining"`
	Cycles      int     `json:"cycles"`
	Bandwidth   float64 `json:"bandwidth_ops_per_cycle"`
	MeanLatency float64 `json:"mean_latency_cycles"`
	P99Latency  float64 `json:"p99_latency_cycles"`
	Combines    int64   `json:"combines"`

	Snapshot combining.StatsSnapshot `json:"snapshot"`
}

// benchTopology runs one topology-sweep cell.  The wirings are pure
// configuration on the two cycle engines; everything else about the run is
// identical.
func benchTopology(topo string, n int, h float64, comb bool, cycles int) topologyPoint {
	waitCap := 0
	if comb {
		waitCap = combining.Unbounded
	}
	inj := make([]combining.Injector, n)
	for p := 0; p < n; p++ {
		inj[p] = combining.NewStochastic(p, n, combining.TrafficConfig{Rate: 0.6, HotFraction: h}, 1)
	}
	var (
		bandwidth, meanLat float64
		snap               combining.StatsSnapshot
	)
	switch topo {
	case "omega", "fattree":
		cfg := combining.NetConfig{Procs: n, QueueCap: 4, WaitBufCap: waitCap}
		if topo == "fattree" {
			cfg.Topology = combining.FatTreeTopology(n, 2)
		}
		sim := combining.NewSim(cfg, inj)
		sim.Run(cycles)
		st := sim.Stats()
		bandwidth, meanLat, snap = st.Bandwidth(), st.MeanLatency(), sim.Snapshot()
	case "hypercube", "torus":
		cfg := combining.CubeConfig{Nodes: n, QueueCap: 4, WaitBufCap: waitCap}
		if topo == "torus" {
			cfg.Topology = combining.SquareTorusTopology(n)
		}
		sim := combining.NewCubeSim(cfg, inj)
		sim.Run(cycles)
		st := sim.Stats()
		bandwidth, meanLat, snap = st.Bandwidth(), st.MeanLatency(), sim.Snapshot()
	default:
		panic("bench: unknown topology " + topo)
	}
	return topologyPoint{
		Topology:    topo,
		Engine:      snap.Engine,
		Procs:       n,
		HotFraction: h,
		Combining:   comb,
		Cycles:      cycles,
		Bandwidth:   bandwidth,
		MeanLatency: meanLat,
		P99Latency:  snap.Histograms["latency_cycles"].Percentile(0.99),
		Combines:    snap.Counters["combines"],
		Snapshot:    snap,
	}
}

// hotspotPoint is one cell of the N × h × combining sweep (experiment E8).
type hotspotPoint struct {
	Procs       int     `json:"procs"`
	HotFraction float64 `json:"hot_fraction"`
	Combining   bool    `json:"combining"`
	Cycles      int     `json:"cycles"`
	Bandwidth   float64 `json:"bandwidth_ops_per_cycle"`
	Limit       float64 `json:"asymptotic_limit"`
	MeanLatency float64 `json:"mean_latency_cycles"`
	P99Latency  float64 `json:"p99_latency_cycles"`
	Combines    int64   `json:"combines"`

	Snapshot combining.StatsSnapshot `json:"snapshot"`
}

// permPoint is one permutation-pattern baseline (combining never fires:
// each processor owns its target address).
type permPoint struct {
	Pattern     string  `json:"pattern"`
	Procs       int     `json:"procs"`
	Cycles      int     `json:"cycles"`
	Bandwidth   float64 `json:"bandwidth_ops_per_cycle"`
	MeanLatency float64 `json:"mean_latency_cycles"`
	P99Latency  float64 `json:"p99_latency_cycles"`

	Snapshot combining.StatsSnapshot `json:"snapshot"`
}

// asyncPoint is fetch-and-add throughput on the goroutine engine, one hot
// cell hammered from every port, with and without combining.
type asyncPoint struct {
	Procs         int     `json:"procs"`
	RoundsPerPort int     `json:"rounds_per_port"`
	Combining     bool    `json:"combining"`
	ElapsedNs     int64   `json:"elapsed_ns"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	Combines      int64   `json:"combines"`

	Snapshot combining.StatsSnapshot `json:"snapshot"`
}

// degradationPoint is one cell of the E13 fault-degradation curve: hot-spot
// traffic under a drop-only fault plan, sweeping the per-hop drop
// probability with combining on and off.  Bandwidth and tail latency show
// what the retry/dedup recovery layer costs as the network gets sicker.
type degradationPoint struct {
	Procs          int     `json:"procs"`
	HotFraction    float64 `json:"hot_fraction"`
	DropRate       float64 `json:"drop_rate_per_hop"`
	Combining      bool    `json:"combining"`
	Cycles         int     `json:"cycles"`
	Bandwidth      float64 `json:"bandwidth_ops_per_cycle"`
	MeanLatency    float64 `json:"mean_latency_cycles"`
	P99Latency     float64 `json:"p99_latency_cycles"`
	FaultsInjected int64   `json:"faults_injected"`
	Retries        int64   `json:"retries"`
	DedupHits      int64   `json:"dedup_hits"`

	Snapshot combining.StatsSnapshot `json:"snapshot"`
}

// saturationPoint is one cell of the E14 saturation curve: hot-spot
// traffic through a tightly bounded non-combining network, fixed window
// versus AIMD adaptive admission.  With every queue small, the hot
// module's congestion backs up through the stages (tree saturation,
// Pfister & Norton); the adaptive controller shrinks the per-processor
// window when round-trip latency spikes, keeping latency bounded and
// degradation smooth where the fixed window piles requests into the tree.
type saturationPoint struct {
	Procs       int     `json:"procs"`
	HotFraction float64 `json:"hot_fraction"`
	Adaptive    bool    `json:"adaptive"`
	Cycles      int     `json:"cycles"`
	Bandwidth   float64 `json:"bandwidth_ops_per_cycle"`
	MeanLatency float64 `json:"mean_latency_cycles"`
	P99Latency  float64 `json:"p99_latency_cycles"`
	// SaturationCycles counts cycles with every stage holding a full
	// forward queue; MaxStreak is the longest consecutive run of them.
	SaturationCycles int64 `json:"saturation_cycles"`
	MaxStreak        int64 `json:"saturation_max_streak"`
	// Memory and reverse high-water marks, bounded by the credit scheme.
	MaxMemQueue int64 `json:"max_mem_queue"`
	MaxRevQueue int64 `json:"max_rev_queue"`
	// MeanWindow is the average admission window over delivered replies
	// (the fixed window when not adaptive); Decreases counts the AIMD
	// multiplicative cuts.
	MeanWindow float64 `json:"mean_window"`
	Decreases  int64   `json:"window_decreases"`

	Snapshot combining.StatsSnapshot `json:"snapshot"`
}

// parallelPoint is one cell of the E15 parallel-stepper curve: wall-clock
// cost per simulated cycle of the omega engine with its per-cycle work
// sharded across Workers goroutines (DESIGN.md §6).  HostCPUs records the
// cores the measurement actually had — on a single-core host every
// Workers > 1 point is pure scheduling overhead and the speedup sits at
// or below 1.  SnapshotIdentical asserts the determinism contract on the
// exact runs being timed.
type parallelPoint struct {
	Procs             int     `json:"procs"`
	Workers           int     `json:"workers"`
	Cycles            int     `json:"cycles"`
	ElapsedNs         int64   `json:"elapsed_ns"`
	NsPerCycle        float64 `json:"ns_per_cycle"`
	Speedup           float64 `json:"speedup_vs_serial"`
	SnapshotIdentical bool    `json:"snapshot_identical_to_serial"`
	HostCPUs          int     `json:"host_cpus"`
}

// benchParallel times the sharded stepper at one width and returns the
// point plus the end-of-run snapshot for the determinism cross-check.
func benchParallel(n, workers, warmup, cycles int) (parallelPoint, []byte) {
	inj := make([]combining.Injector, n)
	for p := 0; p < n; p++ {
		inj[p] = combining.NewStochastic(p, n, combining.TrafficConfig{Rate: 0.9, HotFraction: 0.3}, 1)
	}
	sim := combining.NewSim(combining.NetConfig{
		Procs: n, QueueCap: 4, WaitBufCap: combining.Unbounded, Workers: workers,
	}, inj)
	sim.Run(warmup)
	start := time.Now()
	sim.Run(cycles)
	elapsed := time.Since(start)
	return parallelPoint{
		Procs:      n,
		Workers:    workers,
		Cycles:     cycles,
		ElapsedNs:  elapsed.Nanoseconds(),
		NsPerCycle: float64(elapsed.Nanoseconds()) / float64(cycles),
		HostCPUs:   runtime.NumCPU(),
	}, sim.Snapshot().JSON()
}

func runBench() {
	rep := benchReport{Schema: "combining-bench/v1", Quick: *quick}

	hotCycles, permCycles := 4000, 2000
	sweepN := []int{16, 64, 256}
	asyncRounds := 2048
	if *quick {
		hotCycles, permCycles = 1000, 600
		sweepN = []int{16, 64}
		asyncRounds = 128
	}

	for _, n := range sweepN {
		for _, h := range []float64{0, 0.0625, 0.125, 0.25} {
			for _, comb := range []bool{false, true} {
				rep.Hotspot = append(rep.Hotspot, benchHotspot(n, h, comb, hotCycles))
			}
		}
	}

	for _, pat := range []struct {
		name string
		perm combining.Permutation
	}{
		{"identity", combining.IdentityPerm},
		{"bit_reverse", combining.BitReversePerm},
		{"transpose", combining.TransposePerm},
		{"shift", combining.ShiftPerm},
	} {
		rep.Permutation = append(rep.Permutation, benchPermutation(pat.name, pat.perm, 64, permCycles))
	}

	for _, comb := range []bool{false, true} {
		rep.AsyncFAA = append(rep.AsyncFAA, benchAsyncFAA(16, asyncRounds, comb))
	}

	degradeN, degradeCycles := 64, hotCycles
	if *quick {
		degradeN = 16
	}
	for _, rate := range []float64{0, 0.005, 0.01, 0.02, 0.05} {
		for _, comb := range []bool{false, true} {
			rep.Degradation = append(rep.Degradation, benchDegradation(degradeN, 0.125, rate, comb, degradeCycles))
		}
	}

	satN, satCycles := 64, 2*hotCycles
	if *quick {
		satN = 16
	}
	for _, h := range []float64{0.0625, 0.125, 0.25, 0.5} {
		for _, adaptive := range []bool{false, true} {
			rep.Saturation = append(rep.Saturation, benchSaturation(satN, h, adaptive, satCycles))
		}
	}

	parN, parWarmup, parCycles := []int{256, 1024}, 64, 512
	if *quick {
		parN, parCycles = []int{64}, 64
	}
	for _, n := range parN {
		var serial parallelPoint
		var serialSnap []byte
		for _, w := range []int{1, 2, 4, 8} {
			pt, snap := benchParallel(n, w, parWarmup, parCycles)
			if w == 1 {
				serial, serialSnap = pt, snap
				pt.Speedup = 1
				pt.SnapshotIdentical = true
			} else {
				pt.Speedup = float64(serial.ElapsedNs) / float64(pt.ElapsedNs)
				pt.SnapshotIdentical = bytes.Equal(snap, serialSnap)
				if !pt.SnapshotIdentical {
					fmt.Fprintf(os.Stderr, "bench: N=%d Workers=%d snapshot differs from serial — determinism broken\n", n, w)
					os.Exit(1)
				}
			}
			rep.Parallel = append(rep.Parallel, pt)
		}
	}

	topoN, topoCycles := 64, hotCycles
	if *quick {
		topoN = 16
	}
	for _, topo := range []string{"omega", "fattree", "hypercube", "torus"} {
		for _, comb := range []bool{false, true} {
			rep.Topology = append(rep.Topology, benchTopology(topo, topoN, 0.25, comb, topoCycles))
		}
	}

	recN, recCycles := 64, 2*hotCycles
	rmeN, rmeRounds := 16, 64
	if *quick {
		recN, rmeRounds = 16, 16
	}
	for _, windows := range []int{0, 1, 2, 4} {
		rep.Recovery = append(rep.Recovery, benchRecovery(recN, 0.125, windows, recCycles))
	}
	for _, windows := range []int{0, 2} {
		rep.RMEAcquire = append(rep.RMEAcquire, benchRME(rmeN, rmeRounds, windows))
	}

	zipfN, zipfCycles := 64, hotCycles
	if *quick {
		zipfN = 16
	}
	for _, s := range []float64{0, 0.8, 1.2} {
		for _, comb := range []bool{false, true} {
			rep.Zipf = append(rep.Zipf, benchZipf(zipfN, s, 16, comb, zipfCycles))
		}
	}

	for _, burst := range []struct{ on, off int64 }{{0, 0}, {20, 20}, {100, 100}, {400, 400}} {
		for _, comb := range []bool{false, true} {
			rep.Bursty = append(rep.Bursty, benchBursty(zipfN, burst.on, burst.off, comb, 2*zipfCycles))
		}
	}

	advN, advCycles := 64, hotCycles
	if *quick {
		advN = 16
	}
	for _, rate := range []float64{0, 0.005, 0.01, 0.02} {
		for _, comb := range []bool{false, true} {
			rep.Adversarial = append(rep.Adversarial, benchAdversarial(advN, 0.125, rate, comb, advCycles))
		}
	}

	barSyncs := 50000
	if *quick {
		barSyncs = 2000
	}
	for _, kind := range []string{"counting", "sense", "dissemination"} {
		for _, w := range []int{2, 4, 8} {
			rep.Barrier = append(rep.Barrier, benchBarrier(kind, w, barSyncs))
		}
	}

	rep.SyncPrims = benchSyncPrimitives(*quick)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		panic(err)
	}
	out = append(out, '\n')
	if err := os.WriteFile(*benchOut, out, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "bench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("bench baseline written to %s (%d hot-spot points, %d permutations, %d async runs, %d degradation points, %d saturation points, %d parallel points, %d topology points, %d recovery points, %d RME points, %d zipf points, %d bursty points, %d adversarial points, %d barrier points, %d sync-primitive points)\n",
		*benchOut, len(rep.Hotspot), len(rep.Permutation), len(rep.AsyncFAA), len(rep.Degradation), len(rep.Saturation), len(rep.Parallel), len(rep.Topology), len(rep.Recovery), len(rep.RMEAcquire), len(rep.Zipf), len(rep.Bursty), len(rep.Adversarial), len(rep.Barrier), len(rep.SyncPrims))
}

// recoveryPoint is one cell of the E16 recovery curve: hot-spot traffic with
// combining under a generated crash–restart schedule, sweeping the number of
// crash windows per kind (0 = clean baseline).  Throughput and tail latency
// show what checkpointed crash recovery costs as components die more often;
// the replay ledger shows the exactly-once machinery at work.
type recoveryPoint struct {
	Procs        int     `json:"procs"`
	HotFraction  float64 `json:"hot_fraction"`
	CrashWindows int     `json:"crash_windows_per_kind"`
	Cycles       int     `json:"cycles"`
	Bandwidth    float64 `json:"bandwidth_ops_per_cycle"`
	MeanLatency  float64 `json:"mean_latency_cycles"`
	P99Latency   float64 `json:"p99_latency_cycles"`
	Crashes      int64   `json:"crashes"`
	Restores     int64   `json:"restores"`
	Checkpoints  int64   `json:"checkpoints"`
	LostInFlight int64   `json:"lost_in_flight"`
	Replayed     int64   `json:"replayed_requests"`
	HostCPUs     int     `json:"host_cpus"`

	Snapshot combining.StatsSnapshot `json:"snapshot"`
}

// benchRecovery runs one recovery-curve cell: benchHotspot's workload under
// a GenCrashPlan schedule of the given intensity (0 windows = no plan, the
// clean baseline).
func benchRecovery(n int, h float64, windows, cycles int) recoveryPoint {
	var plan *combining.FaultPlan
	if windows > 0 {
		dead := int64(cycles / 25)
		if dead < 20 {
			dead = 20
		}
		plan = combining.GenCrashPlan(13, windows, int64(cycles), dead)
		plan.RetryTimeout = 512
	}
	inj := make([]combining.Injector, n)
	for p := 0; p < n; p++ {
		inj[p] = combining.NewStochastic(p, n, combining.TrafficConfig{Rate: 0.6, HotFraction: h}, 1)
	}
	sim := combining.NewSim(combining.NetConfig{
		Procs: n, QueueCap: 4, WaitBufCap: combining.Unbounded, Faults: plan}, inj)
	sim.Run(cycles)
	st := sim.Stats()
	snap := sim.Snapshot()
	return recoveryPoint{
		Procs:        n,
		HotFraction:  h,
		CrashWindows: windows,
		Cycles:       cycles,
		Bandwidth:    st.Bandwidth(),
		MeanLatency:  st.MeanLatency(),
		P99Latency:   st.Percentile(0.99),
		Crashes:      snap.Counters["crashes"],
		Restores:     snap.Counters["restores"],
		Checkpoints:  snap.Counters["checkpoints"],
		LostInFlight: snap.Counters["lost_in_flight"],
		Replayed:     snap.Counters["replayed_requests"],
		HostCPUs:     runtime.NumCPU(),
		Snapshot:     snap,
	}
}

// rmePoint is recoverable-mutual-exclusion acquire latency, clean versus
// crashed: every processor loops acquire → critical section → release on
// one lock through the combining network, and the point reports how long a
// grant takes from the first attempt of each round (NAK spins and crash
// recovery included).
type rmePoint struct {
	Procs        int     `json:"procs"`
	Rounds       int     `json:"rounds_per_proc"`
	CrashWindows int     `json:"crash_windows_per_kind"`
	RunCycles    int64   `json:"run_cycles"`
	AcquireMean  float64 `json:"acquire_mean_cycles"`
	AcquireP99   float64 `json:"acquire_p99_cycles"`
	AcquireMax   int64   `json:"acquire_max_cycles"`
	NAKs         int64   `json:"acquire_naks"`
	HostCPUs     int     `json:"host_cpus"`
}

// rmeBenchClient is the lock-protocol injector of the RME bench: acquire
// (spin on NAK), a deliberately split read-modify-write of a shared counter
// inside the critical section, release.  The engine's tracking and
// retransmission apply to it like any injector.
type rmeBenchClient struct {
	proc   combining.ProcID
	ids    *combining.IDGen
	nprocs int
	rounds int

	phase     int
	round     int
	pending   bool
	pendingID combining.ReqID
	loaded    int64

	naks      int64
	trying    bool
	tryStart  int64
	latencies []int64
}

const (
	rmeLock = combining.Addr(0)
	rmeCtr  = combining.Addr(1)
)

func (c *rmeBenchClient) Next(cycle int64) (combining.Injection, bool) {
	if c.pending || c.round >= c.rounds {
		return combining.Injection{}, false
	}
	var op combining.Mapping
	addr := rmeLock
	switch c.phase {
	case 0:
		op = combining.RMEAcquire(int64(c.proc) + 1)
		if !c.trying {
			c.trying, c.tryStart = true, cycle
		}
	case 1:
		op, addr = combining.Load{}, rmeCtr
	case 2:
		op, addr = combining.StoreOf(c.loaded+1), rmeCtr
	default:
		op = combining.RMERelease()
	}
	id := c.ids.NextPartitioned(c.nprocs)
	c.pending, c.pendingID = true, id
	return combining.Injection{Req: combining.NewRequest(id, addr, op, c.proc)}, true
}

func (c *rmeBenchClient) Deliver(rep combining.Reply, cycle int64) {
	c.pending = false
	switch c.phase {
	case 0:
		if combining.RMEAcquired(rep.Val) {
			c.latencies = append(c.latencies, cycle-c.tryStart)
			c.trying = false
			c.phase = 1
		} else {
			c.naks++
		}
	case 1:
		c.loaded = rep.Val.Val
		c.phase = 2
	case 2:
		c.phase = 3
	default:
		c.phase = 0
		c.round++
	}
}

// benchRME runs the lock protocol to completion and distills the acquire
// latencies.  The final counter is asserted (mutual exclusion would be a
// correctness bug, not a slow point).
func benchRME(n, rounds, windows int) rmePoint {
	var plan *combining.FaultPlan
	if windows > 0 {
		plan = combining.GenCrashPlan(13, windows, 4000, 80)
		plan.RetryTimeout = 512
	}
	clients := make([]*rmeBenchClient, n)
	inj := make([]combining.Injector, n)
	for i := range clients {
		clients[i] = &rmeBenchClient{
			proc: combining.ProcID(i), ids: combining.PartitionIDs(i, n),
			nprocs: n, rounds: rounds,
		}
		inj[i] = clients[i]
	}
	sim := combining.NewSim(combining.NetConfig{
		Procs: n, QueueCap: 4, WaitBufCap: combining.Unbounded, Faults: plan}, inj)
	done := func() bool {
		for _, c := range clients {
			if c.round < c.rounds {
				return false
			}
		}
		return sim.InFlight() == 0
	}
	var ran int64
	for ; ran < 4_000_000 && !done(); ran++ {
		sim.Step()
	}
	if !done() {
		panic(fmt.Sprintf("bench: RME protocol incomplete after %d cycles (windows %d)", ran, windows))
	}
	if got := sim.Memory().Peek(rmeCtr).Val; got != int64(n*rounds) {
		panic(fmt.Sprintf("bench: RME counter %d, want %d — mutual exclusion violated", got, n*rounds))
	}
	var lat []int64
	var naks int64
	for _, c := range clients {
		lat = append(lat, c.latencies...)
		naks += c.naks
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	var sum int64
	for _, l := range lat {
		sum += l
	}
	return rmePoint{
		Procs:        n,
		Rounds:       rounds,
		CrashWindows: windows,
		RunCycles:    ran,
		AcquireMean:  float64(sum) / float64(len(lat)),
		AcquireP99:   float64(lat[len(lat)*99/100]),
		AcquireMax:   lat[len(lat)-1],
		NAKs:         naks,
		HostCPUs:     runtime.NumCPU(),
	}
}

// benchHotspot mirrors RunHotspot but keeps the simulator so the point can
// carry its full instrumentation snapshot.
func benchHotspot(n int, h float64, comb bool, cycles int) hotspotPoint {
	waitCap := 0
	if comb {
		waitCap = combining.Unbounded
	}
	inj := make([]combining.Injector, n)
	for p := 0; p < n; p++ {
		inj[p] = combining.NewStochastic(p, n, combining.TrafficConfig{Rate: 0.6, HotFraction: h}, 1)
	}
	sim := combining.NewSim(combining.NetConfig{Procs: n, QueueCap: 4, WaitBufCap: waitCap}, inj)
	sim.Run(cycles)
	st := sim.Stats()
	snap := sim.Snapshot()
	return hotspotPoint{
		Procs:       n,
		HotFraction: h,
		Combining:   comb,
		Cycles:      cycles,
		Bandwidth:   st.Bandwidth(),
		Limit:       combining.AsymptoticHotBandwidth(n, h),
		MeanLatency: st.MeanLatency(),
		P99Latency:  st.Percentile(0.99),
		Combines:    snap.Counters["combines"],
		Snapshot:    snap,
	}
}

// benchDegradation is benchHotspot under a drop-only fault plan: the same
// hot-spot workload, but every forward and reverse hop is dropped with the
// given probability and the engine's timeout/retransmit/dedup recovery
// layer keeps the run exactly-once.
func benchDegradation(n int, h, rate float64, comb bool, cycles int) degradationPoint {
	waitCap := 0
	if comb {
		waitCap = combining.Unbounded
	}
	// The base timeout sits above the healthy hot-spot p99 (~400 cycles
	// at this load), so the curve measures recovery from drops, not
	// spurious retransmits of requests merely delayed by congestion.
	plan := &combining.FaultPlan{Seed: 13, DropFwd: rate, DropRev: rate, RetryTimeout: 512}
	inj := make([]combining.Injector, n)
	for p := 0; p < n; p++ {
		inj[p] = combining.NewStochastic(p, n, combining.TrafficConfig{Rate: 0.6, HotFraction: h}, 1)
	}
	sim := combining.NewSim(combining.NetConfig{Procs: n, QueueCap: 4, WaitBufCap: waitCap, Faults: plan}, inj)
	sim.Run(cycles)
	st := sim.Stats()
	snap := sim.Snapshot()
	return degradationPoint{
		Procs:          n,
		HotFraction:    h,
		DropRate:       rate,
		Combining:      comb,
		Cycles:         cycles,
		Bandwidth:      st.Bandwidth(),
		MeanLatency:    st.MeanLatency(),
		P99Latency:     st.Percentile(0.99),
		FaultsInjected: snap.Counters["faults_injected"],
		Retries:        snap.Counters["retries"],
		DedupHits:      snap.Counters["dedup_hits"],
		Snapshot:       snap,
	}
}

// benchSaturation runs the E14 point: a non-combining network with every
// queue tight (the configuration tree saturation punishes hardest),
// fixed window 8 versus AIMD admission starting at 8.  The adaptive side
// reports its mean window and decrease count so the curve shows the
// controller actually throttling.
func benchSaturation(n int, h float64, adaptive bool, cycles int) saturationPoint {
	traffic := combining.TrafficConfig{
		Rate: 0.8, HotFraction: h, Window: 8,
		Adaptive: adaptive, MinWindow: 1, MaxWindow: 16,
	}
	inj := make([]combining.Injector, n)
	var ctrls []*combining.AIMD
	for p := 0; p < n; p++ {
		s := combining.NewStochastic(p, n, traffic, 7)
		if c := s.Admission(); c != nil {
			ctrls = append(ctrls, c)
		}
		inj[p] = s
	}
	sim := combining.NewSim(combining.NetConfig{
		Procs: n, QueueCap: 2, RevQueueCap: 2, MemQueueCap: 2, WaitBufCap: 0,
	}, inj)
	sim.Run(cycles)
	st := sim.Stats()
	snap := sim.Snapshot()
	meanWin, decreases := float64(traffic.Window), int64(0)
	if len(ctrls) > 0 {
		sum := 0.0
		for _, c := range ctrls {
			sum += c.MeanWindow()
			decreases += c.Decreases
		}
		meanWin = sum / float64(len(ctrls))
	}
	return saturationPoint{
		Procs:            n,
		HotFraction:      h,
		Adaptive:         adaptive,
		Cycles:           cycles,
		Bandwidth:        st.Bandwidth(),
		MeanLatency:      st.MeanLatency(),
		P99Latency:       st.Percentile(0.99),
		SaturationCycles: snap.Counters["saturation_cycles"],
		MaxStreak:        snap.Gauges["saturation_max_streak"],
		MaxMemQueue:      snap.Gauges["max_mem_queue"],
		MaxRevQueue:      snap.Gauges["max_rev_queue"],
		MeanWindow:       meanWin,
		Decreases:        decreases,
		Snapshot:         snap,
	}
}

func benchPermutation(name string, perm combining.Permutation, n, cycles int) permPoint {
	inj := make([]combining.Injector, n)
	for p := 0; p < n; p++ {
		inj[p] = combining.NewPermInjector(p, n, perm, 4)
	}
	sim := combining.NewSim(combining.NetConfig{Procs: n, WaitBufCap: 0}, inj)
	sim.Run(cycles)
	st := sim.Stats()
	return permPoint{
		Pattern:     name,
		Procs:       n,
		Cycles:      cycles,
		Bandwidth:   st.Bandwidth(),
		MeanLatency: st.MeanLatency(),
		P99Latency:  st.Percentile(0.99),
		Snapshot:    sim.Snapshot(),
	}
}

// benchAsyncFAA hammers one address from every port with pipelined
// fetch-and-adds and measures wall-clock throughput; the round-trip latency
// distribution rides along in the snapshot's port_rtt_ns histogram.
func benchAsyncFAA(procs, rounds int, comb bool) asyncPoint {
	net := combining.NewAsyncNet(combining.AsyncConfig{Procs: procs, Combining: comb, Window: 16})
	defer net.Close()

	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			port := net.Port(p)
			for r := 0; r < rounds; r++ {
				port.RMWAsync(0, combining.FetchAdd(1))
			}
			port.Fence()
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start)

	total := procs * rounds
	if got := net.Memory().Peek(0).Val; got != int64(total) {
		panic(fmt.Sprintf("bench: async FAA final %d, want %d", got, total))
	}
	return asyncPoint{
		Procs:         procs,
		RoundsPerPort: rounds,
		Combining:     comb,
		ElapsedNs:     elapsed.Nanoseconds(),
		OpsPerSec:     float64(total) / elapsed.Seconds(),
		Combines:      net.Combines(),
		Snapshot:      net.Snapshot(),
	}
}
