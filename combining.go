// Package combining is a library reproduction of
//
//	Kruskal, Rudolph, Snir.  Efficient Synchronization on Multiprocessors
//	with Shared Memory.  PODC 1986 / ACM TOPLAS 10(4), 1988.
//
// It provides the paper's read-modify-write formalism and every tractable
// mapping family of Section 5; the memory-request combining mechanism of
// Section 4 with its correctness machinery (Lemma 4.1 bookkeeping and the
// Theorem 4.2 serializability checkers); two complete combining-network
// engines — a cycle-accurate Omega-network simulator for the hot-spot
// experiments and an asynchronous goroutine-per-switch network for running
// real concurrent programs — plus the Section 7 variants (hypercube, bus
// FIFO); the Section 6 parallel-prefix tree; and the classic fetch-and-add
// coordination algorithms built on top.
//
// The facade re-exports the stable API from the internal packages; see
// DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record.
package combining

import (
	"combining/internal/asyncnet"
	"combining/internal/busnet"
	"combining/internal/chaos"
	"combining/internal/coord"
	"combining/internal/core"
	"combining/internal/engine"
	"combining/internal/faults"
	"combining/internal/flow"
	"combining/internal/hypercube"
	"combining/internal/machine"
	"combining/internal/memory"
	"combining/internal/model"
	"combining/internal/network"
	"combining/internal/pathexpr"
	"combining/internal/prefix"
	"combining/internal/recover"
	"combining/internal/rmw"
	"combining/internal/serial"
	"combining/internal/stats"
	"combining/internal/word"
)

// ---- Shared instrumentation (internal/stats) ----

// StatsSnapshot is the cross-engine instrumentation snapshot every engine
// returns from its Snapshot method; it serializes to JSON for baselines.
type StatsSnapshot = stats.Snapshot

// StatsHistogram is a frozen latency/size distribution with percentiles.
type StatsHistogram = stats.HistogramSnapshot

// ---- Flow control (internal/flow) ----

// AIMD is the additive-increase/multiplicative-decrease admission
// controller behind TrafficConfig.Adaptive.
type AIMD = flow.AIMD

// Watchdog is the progress watchdog every cycle engine runs: it declares
// livelock/deadlock after a configurable number of cycles with work in
// flight and a frozen progress signature.
type Watchdog = flow.Watchdog

// Saturation detects tree saturation (Pfister & Norton) from an
// engine-specific fullness predicate observed every cycle.
type Saturation = flow.Saturation

// DefaultWatchdogCycles is the default watchdog limit.
const DefaultWatchdogCycles = network.DefaultWatchdogCycles

// ---- Engine core (internal/engine) ----

// StagedTopology is the wiring contract of the staged-network engine: pure
// line arithmetic (perfect-shuffle-style permutations between switch
// columns) that the engine core turns into routing and parallel-stepper
// conflict groups.  NetConfig.Topology accepts any implementation.
type StagedTopology = engine.Staged

// DirectTopology is the wiring contract of the direct-connection engine:
// a node graph with deterministic forward/reverse link selection.
// CubeConfig.Topology accepts any implementation.
type DirectTopology = engine.Direct

// Topology constructors: the paper's omega network and binary hypercube,
// plus the fat-tree (k-ary butterfly) and mixed-radix torus wirings.
var (
	OmegaTopology       = engine.OmegaOf
	FatTreeTopology     = engine.FatTreeOf
	CubeTopology        = engine.CubeOf
	TorusTopology       = engine.TorusOf
	SquareTorusTopology = engine.SquareTorusOf
)

// EngineCounterKeys lists the canonical snapshot counter schema every
// engine publishes; FaultCounterKeys the fault/recovery block appended
// under a fault plan.
var (
	EngineCounterKeys = engine.CounterKeys
	FaultCounterKeys  = faults.CounterKeys
)

// ---- Words and identifiers (internal/word) ----

// Word is one shared-memory cell: a 64-bit value plus a state tag.
type Word = word.Word

// Tag is the synchronization state of a tagged cell (full/empty bit or
// automaton state).
type Tag = word.Tag

// Addr names a shared-memory cell.
type Addr = word.Addr

// ProcID identifies a processor.
type ProcID = word.ProcID

// ReqID identifies a request.
type ReqID = word.ReqID

// IDGen issues request ids; PartitionIDs gives processor i of n its own
// id stream, disjoint from every other processor's, for custom injectors.
type IDGen = word.IDGen

var PartitionIDs = word.Partition

// Full/empty tags.
const (
	Empty = word.Empty
	Full  = word.Full
)

// W builds an untagged word; WT builds a tagged one.
var (
	W  = word.W
	WT = word.WT
)

// ---- The RMW formalism (internal/rmw) ----

// Mapping is the updating transformation f of RMW(X, f).
type Mapping = rmw.Mapping

// Mapping families.
type (
	// Load is the identity mapping (a load).
	Load = rmw.Load
	// Const is the constant mapping I_v (store or swap).
	Const = rmw.Const
	// Assoc is fetch-and-θ for associative θ.
	Assoc = rmw.Assoc
	// Bool is the Boolean bit-vector family (x AND a) XOR b.
	Bool = rmw.Bool
	// Affine is x → ax+b over wrapping integers.
	Affine = rmw.Affine
	// Moebius is x → (ax+b)/(cx+d) over float64.
	Moebius = rmw.Moebius
	// Table is a data-level synchronization state table.
	Table = rmw.Table
	// BoolUnary names one of the four unary Boolean operations.
	BoolUnary = rmw.BoolUnary
)

// The four unary Boolean operations of Section 5.3.
const (
	BLoad  = rmw.BLoad
	BClear = rmw.BClear
	BSet   = rmw.BSet
	BComp  = rmw.BComp
)

// Mapping constructors and composition.
var (
	StoreOf  = rmw.StoreOf
	SwapOf   = rmw.SwapOf
	FetchAdd = rmw.FetchAdd
	FetchOr  = rmw.FetchOr
	FetchAnd = rmw.FetchAnd
	FetchXor = rmw.FetchXor
	FetchMin = rmw.FetchMin
	FetchMax = rmw.FetchMax

	TestAndSet = rmw.TestAndSet
	BoolOf     = rmw.BoolOf

	ComposeBoolUnary = rmw.ComposeBoolUnary

	FELoad              = rmw.FELoad
	FELoadClear         = rmw.FELoadClear
	FEStoreSet          = rmw.FEStoreSet
	FEStoreIfClearSet   = rmw.FEStoreIfClearSet
	FEStoreClear        = rmw.FEStoreClear
	FEStoreIfClearClear = rmw.FEStoreIfClearClear
	FELoadIfSetClear    = rmw.FELoadIfSetClear
	FEStoreIfClear      = rmw.FEStoreIfClear
	FEStoreIfSet        = rmw.FEStoreIfSet

	// Recoverable mutual exclusion (Section 5.5 full/empty operations as
	// a crash-survivable lock; internal/rmw/rme.go): acquire spins on
	// NAK, release clears, inspect recovers the outcome of a lost
	// acquire reply.  All three are combinable Tables.
	RMEAcquire  = rmw.RMEAcquire
	RMERelease  = rmw.RMERelease
	RMEInspect  = rmw.RMEInspect
	RMEAcquired = rmw.RMEAcquired
	RMEHolder   = rmw.RMEHolder

	NewTable     = rmw.NewTable
	PartialStore = rmw.PartialStore
	StoreByte    = rmw.StoreByte

	// Compose returns f∘g — f then g — per the Section 4.2 rule, and
	// whether the pair is combinable.
	Compose = rmw.Compose
	// ComposeAll folds Compose over a chain.
	ComposeAll = rmw.ComposeAll
	// Combinable reports whether two mappings can combine.
	Combinable = rmw.Combinable
	// NeedsValue reports whether a reply must carry the old value.
	NeedsValue = rmw.NeedsValue

	// EncodeMapping and DecodeMapping are the wire encoding.
	EncodeMapping = rmw.Encode
	DecodeMapping = rmw.Decode
)

// ---- The combining mechanism (internal/core) ----

// Request is a memory request message ⟨id, addr, f⟩.
type Request = core.Request

// Reply is a reply message ⟨id, val⟩.
type Reply = core.Reply

// Record is a wait-buffer entry created by a combine.
type Record = core.Record

// Policy configures combining (order reversal).
type Policy = core.Policy

// Combining primitives.
var (
	// NewRequest builds a fresh request.
	NewRequest = core.NewRequest
	// Combine merges two requests per Section 4.2.
	Combine = core.Combine
	// Decombine splits a reply using a wait-buffer record.
	Decombine = core.Decombine
	// Execute performs a memory-side RMW on a cell.
	Execute = core.Execute
	// SerialReplies is the serial reference semantics of Lemma 4.1.
	SerialReplies = core.SerialReplies
)

// Unbounded is the wait-buffer capacity for unlimited combining.
const Unbounded = core.Unbounded

// ---- Memory modules (internal/memory) ----

// MemModule is one FIFO memory module.
type MemModule = memory.Module

// MemArray is an interleaved bank of modules.
type MemArray = memory.Array

// QueueingMemory is the Section 5.5 queueing alternative: conditional
// full/empty operations park at the controller instead of returning
// negative acknowledgments.
type QueueingMemory = memory.QueueingModule

// NewMemModule, NewMemArray and NewQueueingMemory construct memory.
var (
	NewMemModule      = memory.NewModule
	NewMemArray       = memory.NewArray
	NewQueueingMemory = memory.NewQueueingModule
)

// ---- Cycle-accurate network machine (internal/network) ----

// NetConfig parameterizes the Omega-network simulator.
type NetConfig = network.Config

// NetStats aggregates a simulation run.
type NetStats = network.Stats

// Sim is the cycle-driven machine.
type Sim = network.Sim

// Injector supplies traffic for one processor port.
type Injector = network.Injector

// Injection is one offered request.
type Injection = network.Injection

// Stochastic is the hot-spot workload injector.
type Stochastic = network.Stochastic

// TrafficConfig describes the hot-spot workload.
type TrafficConfig = network.TrafficConfig

// HotspotResult is one sweep point.
type HotspotResult = network.HotspotResult

// NetEvent is one simulator trace event; NetTraceLog collects them.
type (
	NetEvent    = network.Event
	NetTraceLog = network.TraceLog
)

// Permutation traffic patterns for network baselines.
type Permutation = network.Permutation

// Classic permutation patterns and runner.
var (
	IdentityPerm    = network.IdentityPerm
	BitReversePerm  = network.BitReversePerm
	TransposePerm   = network.TransposePerm
	ShiftPerm       = network.ShiftPerm
	RunPermutation  = network.RunPermutation
	NewPermInjector = network.NewPermInjector
)

// TraceEntry is one parsed request of the replay trace format;
// ReplayInjector feeds a trace slice into an engine.
type (
	TraceEntry     = network.TraceEntry
	ReplayInjector = network.ReplayInjector
)

// Trace replay: parse/write the trace format and build injectors.
var (
	ParseTrace         = network.ParseTrace
	WriteTrace         = network.WriteTrace
	NewReplayInjectors = network.NewReplayInjectors
)

// Network simulator constructors and helpers.
var (
	NewSim                 = network.NewSim
	NewStochastic          = network.NewStochastic
	RunHotspot             = network.RunHotspot
	RunHotspotTraffic      = network.RunHotspotTraffic
	AsymptoticHotBandwidth = network.AsymptoticHotBandwidth
)

// Analytic performance model (Kruskal & Snir 1983).
var (
	// KruskalSnirWait is the per-stage queueing delay of a buffered
	// banyan under uniform load.
	KruskalSnirWait = model.KruskalSnirWait
	// PredictUniformLatency is the closed-form round-trip prediction.
	PredictUniformLatency = model.UniformLatency
	// SaturationLoad is the offered load at which a hot spot saturates.
	SaturationLoad = model.SaturationLoad
)

// ---- Programs, fences, histories (internal/machine, internal/serial) ----

// Machine runs instruction streams on the simulated network.
type Machine = machine.Machine

// Instr is one program instruction.
type Instr = machine.Instr

// M1Machine is the Section 3.2 central-FIFO memory, sequentially
// consistent by construction.
type M1Machine = machine.M1Machine

// MachineEngine is any transport programs can run on.
type MachineEngine = machine.Engine

// Program builders.
var (
	NewMachine          = machine.New
	NewM1               = machine.NewM1
	NewMachineInjectors = machine.NewInjectors
	RMW                 = machine.RMW
	Fence               = machine.Fence
)

// History is a record of completed operations.
type History = serial.History

// HistOp is one completed operation.
type HistOp = serial.Op

// TimedHistory carries issue/completion timestamps for the
// linearizability checker.
type TimedHistory = serial.TimedHistory

// TimedOp is an operation with its observation interval.
type TimedOp = serial.TimedOp

// Consistency checkers.
var (
	// CheckM2 verifies per-location serializability (Theorem 4.2).
	CheckM2 = serial.CheckM2
	// CheckM2WithFinal additionally explains the final memory contents.
	CheckM2WithFinal = serial.CheckM2WithFinal
	// SeqConsistent decides full sequential consistency (small
	// histories).
	SeqConsistent = serial.SeqConsistent
	// CheckLinearizable verifies per-location linearizability against
	// real-time operation intervals.
	CheckLinearizable = serial.CheckLinearizable
)

// ---- Deterministic fault injection (internal/faults) ----

// FaultPlan is one deterministic fault scenario: seeded link drops, switch
// stall windows, memory slowdowns, and the retransmit timeout schedule.
// Every engine Config accepts a *FaultPlan.
type FaultPlan = faults.Plan

// FaultWindow is a half-open cycle interval during which a stall fault
// holds at a site.
type FaultWindow = faults.Window

// FaultInjector answers fault queries for one run and counts injections.
type FaultInjector = faults.Injector

var (
	// DefaultFaultPlan is the standard soak plan for a seed: 1% drops
	// each way, one switch blackout, one memory slowdown.
	DefaultFaultPlan = faults.Default
	// NewFaultInjector builds an injector for a plan.
	NewFaultInjector = faults.NewInjector
	// DefaultCrashPlan is the standard crash–restart soak plan for a
	// seed: one switch crash, one module crash, one link-down burst,
	// checkpoints every 64 cycles.
	DefaultCrashPlan = faults.DefaultCrash
	// GenCrashPlan derives a seeded crash schedule: n crashes of each
	// kind scattered over [0, horizon) with the given dead time.
	GenCrashPlan = faults.GenCrashPlan
	// DefaultAdversarialPlan is the standard adversarial-delivery soak
	// plan for a seed: Default's drops and stall windows plus per-link
	// reordering, network-born duplication, and payload corruption on the
	// terminal links (DESIGN.md §8).
	DefaultAdversarialPlan = faults.DefaultAdversarial
	// EncodeFaultPlan and ParseFaultPlan are the command-line plan codec:
	// a plan travels as one comma-joined key=value shell word, the form
	// the chaos fuzzer emits reproducers in and cmd/replay / cmd/combsim
	// accept back.
	EncodeFaultPlan = faults.EncodePlan
	ParseFaultPlan  = faults.ParsePlan
)

// RecoveryManager is the per-run crash–restart ledger (internal/recover):
// checkpoint cadence plus the crash/restore/lost/replayed counters every
// engine folds into its Snapshot under a crash plan.
type RecoveryManager = recover.Manager

// ---- Chaos fuzzing (internal/chaos) ----

// ChaosScenario is one fuzz case of the randomized fault-plan fuzzer: a
// wiring, a seeded randomized workload, and a sampled fault plan.  Running
// a scenario is a pure function of its fields, so violations replay and
// shrink deterministically.
type ChaosScenario = chaos.Scenario

var (
	// ChaosWirings lists the six cycle-engine wirings the fuzzer rotates
	// through.
	ChaosWirings = chaos.Wirings
	// NewChaosScenario derives the index-th scenario of a fuzz run.
	NewChaosScenario = chaos.NewScenario
	// RunChaos executes one scenario and returns its snapshot counters
	// plus the first invariant violation (nil if clean).
	RunChaos = chaos.Run
	// ShrinkChaos minimizes a failing scenario under a rerun budget.
	ShrinkChaos = chaos.Shrink
	// ChaosWindows counts a plan's fault windows — the shrink metric.
	ChaosWindows = chaos.Windows
	// ChaosRepro renders a scenario as a replayable cmd/replay command.
	ChaosRepro = chaos.ReproCommand
)

// ---- Asynchronous combining network (internal/asyncnet) ----

// AsyncConfig parameterizes the goroutine network.
type AsyncConfig = asyncnet.Config

// AsyncNet is a running asynchronous combining network.
type AsyncNet = asyncnet.Net

// AsyncPort is one processor's connection; AsyncPending is a pipelined
// in-flight request handle.
type (
	AsyncPort    = asyncnet.Port
	AsyncPending = asyncnet.Pending
)

// NewAsyncNet starts an asynchronous network.
var NewAsyncNet = asyncnet.New

// ErrAbandonedHandle is returned by AsyncPending.WaitErr for a handle the
// port's latest Fence abandoned.
var ErrAbandonedHandle = asyncnet.ErrAbandonedHandle

// ---- Coordination primitives (internal/coord) ----

// SharedMemory hands out per-participant views of shared cells.
type SharedMemory = coord.Memory

// SharedCell is one shared integer cell.
type SharedCell = coord.Cell

// Coordination types.
type (
	// Counter is a shared ticket counter.
	Counter = coord.Counter
	// Barrier is a reusable N-party barrier.
	Barrier = coord.Barrier
	// Semaphore is a counting semaphore.
	Semaphore = coord.Semaphore
	// RWLock is the fetch-and-add readers–writers lock.
	RWLock = coord.RWLock
	// FAAQueue is the bounded MPMC fetch-and-add queue.
	FAAQueue = coord.Queue
	// BitLock is the Section 5.3 multiple-locking word.
	BitLock = coord.BitLock
	// SoftBarrier is the software combining tree — the algorithmic
	// fallback when the network does not combine.
	SoftBarrier = coord.SoftBarrier
	// PortMemory adapts an asyncnet port to SharedMemory.
	PortMemory = coord.PortMemory
)

// Coordination constructors.
var (
	NewNativeMemory = coord.NewNative
	NewCounter      = coord.NewCounter
	NewBarrier      = coord.NewBarrier
	NewSemaphore    = coord.NewSemaphore
	NewRWLock       = coord.NewRWLock
	NewFAAQueue     = coord.NewQueue
	NewBitLock      = coord.NewBitLock
	NewSoftBarrier  = coord.NewSoftBarrier
)

// ---- Parallel prefix (internal/prefix) ----

// Monoid supplies an associative operation for prefix computation.
type Monoid[T any] = prefix.Monoid[T]

// PrefixSchedule is the synchronized analysis result.
type PrefixSchedule = prefix.Schedule

// Prefix computations.
var (
	IntAdd          = prefix.IntAdd
	AnalyzePrefix   = prefix.Analyze
	PaperNontrivial = prefix.PaperNontrivial
	PaperCycles     = prefix.PaperCycles
)

// RunPrefixTree executes the asynchronous Section 6 tree.
func RunPrefixTree[T any](m Monoid[T], vals []T) (prefixes []T, total T, ops prefix.OpCount) {
	return prefix.RunTree(m, vals)
}

// Sklansky computes inclusive prefixes with the minimum-depth circuit.
func Sklansky[T any](m Monoid[T], vals []T) ([]T, prefix.Circuit) {
	return prefix.Sklansky(m, vals)
}

// BrentKung computes inclusive prefixes with the size-frugal circuit.
func BrentKung[T any](m Monoid[T], vals []T) ([]T, prefix.Circuit) {
	return prefix.BrentKung(m, vals)
}

// LadnerFischer computes inclusive prefixes with the LF(k) circuit family
// cited by Section 6, interpolating depth against size.
func LadnerFischer[T any](m Monoid[T], vals []T, k int) ([]T, prefix.Circuit) {
	return prefix.LadnerFischer(m, vals, k)
}

// ---- Path expressions (internal/pathexpr) ----

// PathGuard is a compiled path expression.
type PathGuard = pathexpr.Guard

// CompilePath compiles a path expression into combinable guard mappings.
var CompilePath = pathexpr.Compile

// ---- Section 7 variants ----

// CubeConfig parameterizes the hypercube machine.
type CubeConfig = hypercube.Config

// CubeSim is the cycle-driven hypercube.
type CubeSim = hypercube.Sim

// CubeStats summarizes a hypercube run.
type CubeStats = hypercube.Stats

// NewCubeSim builds the hypercube machine.
var NewCubeSim = hypercube.NewSim

// BusConfig parameterizes the bus machine.
type BusConfig = busnet.Config

// BusSim is the cycle-driven bus machine.
type BusSim = busnet.Sim

// BusStats summarizes a bus run.
type BusStats = busnet.Stats

// NewBusSim builds the bus machine.
var NewBusSim = busnet.NewSim
