package combining_test

// The benchmark harness: one benchmark (or family) per experiment in
// DESIGN.md §4.  Simulation benchmarks report domain metrics —
// ops/cycle (delivered memory bandwidth) and cycles/op (latency) — via
// b.ReportMetric in addition to wall-clock time, so the paper-shaped
// numbers appear directly in `go test -bench` output; EXPERIMENTS.md
// records them.

import (
	"fmt"
	"sync"
	"testing"

	combining "combining"
)

// ---- T1–T3, E12: mapping composition (tractability condition 2) ----

func BenchmarkCompose(b *testing.B) {
	cases := []struct {
		name string
		f, g combining.Mapping
	}{
		{"load-store-swap", combining.SwapOf(7), combining.StoreOf(9)},
		{"fetch-and-add", combining.FetchAdd(3), combining.FetchAdd(5)},
		{"bool-mask", combining.Bool{A: 0xff00, B: 0x0ff0}, combining.Bool{A: 0xf0f0, B: 0x00ff}},
		{"affine", combining.Affine{A: 3, B: 1}, combining.Affine{A: -2, B: 7}},
		{"moebius", combining.Moebius{A: 1, B: 2, C: 3, D: 4}, combining.Moebius{A: 2, B: 0, C: 0, D: 1}},
		{"full-empty", combining.FEStoreIfClearSet(5), combining.FELoadClear()},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, ok := combining.Compose(tc.f, tc.g); !ok {
					b.Fatal("must combine")
				}
			}
		})
	}
}

func BenchmarkApply(b *testing.B) {
	w := combining.W(12345)
	cases := []struct {
		name string
		m    combining.Mapping
	}{
		{"fetch-and-add", combining.FetchAdd(3)},
		{"bool-mask", combining.Bool{A: 0xff00ff00, B: 0x00ff00ff}},
		{"affine", combining.Affine{A: 3, B: 1}},
		{"full-empty", combining.FEStoreIfClearSet(5)},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				w = tc.m.Apply(w)
			}
		})
	}
	_ = w
}

func BenchmarkEncodeDecode(b *testing.B) {
	m := combining.FEStoreIfClearSet(42)
	buf := combining.EncodeMapping(m)
	b.Run("encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			buf = combining.EncodeMapping(m)
		}
	})
	b.Run("decode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := combining.DecodeMapping(buf); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- F1: the combine/decombine cycle at one switch ----

func BenchmarkCombineDecombine(b *testing.B) {
	ra := combining.NewRequest(1, 100, combining.FetchAdd(3), 0)
	rb := combining.NewRequest(2, 100, combining.FetchAdd(5), 1)
	cell := combining.W(10)
	for i := 0; i < b.N; i++ {
		comb, rec, ok := combining.Combine(ra, rb, combining.Policy{})
		if !ok {
			b.Fatal("must combine")
		}
		rep := combining.Execute(&cell, comb)
		combining.Decombine(rec, rep)
	}
}

// ---- E8: hot-spot bandwidth sweep ----

func benchHotspot(b *testing.B, nprocs int, h float64, comb bool) {
	b.ReportAllocs()
	var last combining.HotspotResult
	for i := 0; i < b.N; i++ {
		last = combining.RunHotspot(nprocs, 0.6, h, comb, 2000, uint64(i+1))
	}
	b.ReportMetric(last.Stats.Bandwidth(), "ops/cycle")
	b.ReportMetric(last.Stats.MeanLatency(), "cycles/op")
}

func BenchmarkHotspot(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		for _, h := range []float64{0, 0.0625, 0.125, 0.25} {
			for _, comb := range []bool{false, true} {
				name := fmt.Sprintf("N=%d/h=%.4f/combining=%v", n, h, comb)
				b.Run(name, func(b *testing.B) { benchHotspot(b, n, h, comb) })
			}
		}
	}
}

// ---- E9: tree saturation (cold-traffic latency) ----

func BenchmarkTreeSaturation(b *testing.B) {
	traffic := func(h float64) combining.TrafficConfig {
		return combining.TrafficConfig{Rate: 0.3, HotFraction: h, Window: 16}
	}
	for _, tc := range []struct {
		name string
		h    float64
		comb bool
	}{
		{"baseline", 0, false},
		{"hot-no-combining", 0.25, false},
		{"hot-combining", 0.25, true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var last combining.HotspotResult
			for i := 0; i < b.N; i++ {
				last = combining.RunHotspotTraffic(64, traffic(tc.h), tc.comb, 2000, uint64(i+1))
			}
			b.ReportMetric(last.Stats.ColdMeanLatency(), "cold-cycles/op")
		})
	}
}

// ---- A1: partial combining (wait-buffer capacity ablation) ----

func BenchmarkPartialCombining(b *testing.B) {
	for _, cap := range []struct {
		name string
		cap  int
	}{
		{"cap=0", 0}, {"cap=1", 1}, {"cap=4", 4}, {"cap=unbounded", combining.Unbounded},
	} {
		b.Run(cap.name, func(b *testing.B) {
			var st combining.NetStats
			for i := 0; i < b.N; i++ {
				cfg := combining.NetConfig{Procs: 64, WaitBufCap: cap.cap}
				inj := make([]combining.Injector, 64)
				for p := 0; p < 64; p++ {
					inj[p] = combining.NewStochastic(p, 64, combining.TrafficConfig{
						Rate: 0.6, HotFraction: 0.25,
					}, uint64(i+1))
				}
				sim := combining.NewSim(cfg, inj)
				sim.Run(2000)
				st = sim.Stats()
			}
			b.ReportMetric(st.Bandwidth(), "ops/cycle")
			b.ReportMetric(float64(st.Combines), "combines")
		})
	}
}

// ---- E7: parallel prefix ----

func BenchmarkPrefixTree(b *testing.B) {
	for _, n := range []int{64, 1024, 16384} {
		b.Run(fmt.Sprintf("async/n=%d", n), func(b *testing.B) {
			vals := make([]int64, n)
			for i := range vals {
				vals[i] = int64(i + 1)
			}
			for i := 0; i < b.N; i++ {
				combining.RunPrefixTree(combining.IntAdd(), vals)
			}
		})
	}
	for _, n := range []int{64, 1024, 16384} {
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(i + 1)
		}
		b.Run(fmt.Sprintf("sklansky/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				combining.Sklansky(combining.IntAdd(), vals)
			}
		})
		b.Run(fmt.Sprintf("brent-kung/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				combining.BrentKung(combining.IntAdd(), vals)
			}
		})
	}
}

// ---- E10: simultaneous fetch-and-add through the async network ----

func BenchmarkAsyncFAA(b *testing.B) {
	for _, comb := range []bool{false, true} {
		b.Run(fmt.Sprintf("combining=%v", comb), func(b *testing.B) {
			const n = 16
			net := combining.NewAsyncNet(combining.AsyncConfig{Procs: n, Combining: comb})
			defer net.Close()
			b.ResetTimer()
			perPort := b.N/n + 1
			var wg sync.WaitGroup
			for p := 0; p < n; p++ {
				wg.Add(1)
				go func(port *combining.AsyncPort) {
					defer wg.Done()
					for i := 0; i < perPort; i++ {
						port.FetchAdd(0, 1)
					}
				}(net.Port(p))
			}
			wg.Wait()
			b.StopTimer()
			if got := net.Memory().Peek(0).Val; got != int64(n*perPort) {
				b.Fatalf("counter %d, want %d", got, n*perPort)
			}
		})
	}
}

// ---- E1: memory-side vs processor-side RMW ----

func BenchmarkRMWImplementation(b *testing.B) {
	const n, perProc = 16, 10
	run := func(progs [][]combining.Instr) combining.NetStats {
		m := combining.NewMachine(combining.NetConfig{Procs: n, WaitBufCap: combining.Unbounded}, progs)
		if !m.Run(1000000) {
			b.Fatal("did not complete")
		}
		return m.Sim().Stats()
	}
	b.Run("memory-side", func(b *testing.B) {
		var st combining.NetStats
		for i := 0; i < b.N; i++ {
			progs := make([][]combining.Instr, n)
			for p := 0; p < n; p++ {
				for j := 0; j < perProc; j++ {
					progs[p] = append(progs[p], combining.RMW(3, combining.FetchAdd(1)))
				}
			}
			st = run(progs)
		}
		b.ReportMetric(float64(st.Cycles), "machine-cycles")
		b.ReportMetric(float64(st.Issued), "messages")
	})
	b.Run("processor-side", func(b *testing.B) {
		var st combining.NetStats
		for i := 0; i < b.N; i++ {
			progs := make([][]combining.Instr, n)
			for p := 0; p < n; p++ {
				for j := 0; j < perProc; j++ {
					loadIdx := len(progs[p])
					progs[p] = append(progs[p],
						combining.RMW(3, combining.Load{}),
						combining.Instr{
							Addr: 3,
							DynOp: func(rep []combining.Word) combining.Mapping {
								return combining.StoreOf(rep[loadIdx].Val + 1)
							},
							After: []int{loadIdx},
						})
				}
			}
			st = run(progs)
		}
		b.ReportMetric(float64(st.Cycles), "machine-cycles")
		b.ReportMetric(float64(st.Issued), "messages")
	})
}

// ---- A2: the Section 7 topology variants ----

func BenchmarkHypercubeHotspot(b *testing.B) {
	for _, comb := range []bool{false, true} {
		b.Run(fmt.Sprintf("combining=%v", comb), func(b *testing.B) {
			waitCap := 0
			if comb {
				waitCap = combining.Unbounded
			}
			var st combining.CubeStats
			for i := 0; i < b.N; i++ {
				const n = 64
				inj := make([]combining.Injector, n)
				for p := 0; p < n; p++ {
					inj[p] = combining.NewStochastic(p, n, combining.TrafficConfig{
						Rate: 0.5, HotFraction: 0.25, Window: 8,
					}, uint64(i+1))
				}
				sim := combining.NewCubeSim(combining.CubeConfig{Nodes: n, WaitBufCap: waitCap}, inj)
				sim.Run(2000)
				st = sim.Stats()
			}
			b.ReportMetric(st.Bandwidth(), "ops/cycle")
			b.ReportMetric(st.MeanLatency(), "cycles/op")
		})
	}
}

func BenchmarkBusCombining(b *testing.B) {
	for _, comb := range []bool{false, true} {
		b.Run(fmt.Sprintf("combining=%v", comb), func(b *testing.B) {
			waitCap := 0
			if comb {
				waitCap = combining.Unbounded
			}
			var st combining.BusStats
			for i := 0; i < b.N; i++ {
				const n = 16
				inj := make([]combining.Injector, n)
				for p := 0; p < n; p++ {
					inj[p] = combining.NewStochastic(p, n, combining.TrafficConfig{
						Rate: 1.0, HotFraction: 0.5, Window: 4, AddrSpace: 64,
					}, uint64(i+1))
				}
				sim := combining.NewBusSim(combining.BusConfig{Procs: n, Banks: 8, WaitBufCap: waitCap}, inj)
				sim.Run(4000)
				st = sim.Stats()
			}
			b.ReportMetric(st.Bandwidth(), "ops/cycle")
		})
	}
}

// ---- Coordination primitives on both substrates ----

func BenchmarkBarrier(b *testing.B) {
	b.Run("native", func(b *testing.B) {
		const n = 8
		mem := combining.NewNativeMemory()
		rounds := b.N/n + 1
		var wg sync.WaitGroup
		b.ResetTimer()
		for id := 0; id < n; id++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				bar := combining.NewBarrier(mem, 0, n)
				for r := 0; r < rounds; r++ {
					bar.Await()
				}
			}()
		}
		wg.Wait()
	})
	b.Run("combining-net", func(b *testing.B) {
		const n = 8
		net := combining.NewAsyncNet(combining.AsyncConfig{Procs: n, Combining: true})
		defer net.Close()
		rounds := b.N/n + 1
		var wg sync.WaitGroup
		b.ResetTimer()
		for id := 0; id < n; id++ {
			wg.Add(1)
			go func(port *combining.AsyncPort) {
				defer wg.Done()
				bar := combining.NewBarrier(combining.PortMemory{Port: port}, 0, n)
				for r := 0; r < rounds; r++ {
					bar.Await()
				}
			}(net.Port(id))
		}
		wg.Wait()
	})
}

// ---- Checker cost ----

func BenchmarkCheckM2(b *testing.B) {
	h := &combining.History{}
	for i := 0; i < 128; i++ {
		h.Add(combining.HistOp{
			Proc:  combining.ProcID(i % 8),
			Seq:   i / 8,
			Addr:  7,
			Op:    combining.FetchAdd(1),
			Reply: combining.W(int64(i)),
		})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := combining.CheckM2(h, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- A4: permutation baselines ----

func BenchmarkPermutation(b *testing.B) {
	for _, tc := range []struct {
		name string
		perm combining.Permutation
	}{
		{"identity", combining.IdentityPerm},
		{"shift", combining.ShiftPerm},
		{"bit-reverse", combining.BitReversePerm},
		{"transpose", combining.TransposePerm},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var st combining.NetStats
			for i := 0; i < b.N; i++ {
				st = combining.RunPermutation(64, tc.perm, 2000)
			}
			b.ReportMetric(st.Bandwidth(), "ops/cycle")
		})
	}
}

// ---- A5: M1 central FIFO vs the M2 network ----

func BenchmarkM1VersusM2(b *testing.B) {
	progs := func() [][]combining.Instr {
		out := make([][]combining.Instr, 16)
		for p := range out {
			for i := 0; i < 20; i++ {
				out[p] = append(out[p], combining.RMW(combining.Addr(i%8), combining.FetchAdd(1)))
			}
		}
		return out
	}
	b.Run("m1-central-fifo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := combining.NewM1(progs())
			if !m.Run(100000) {
				b.Fatal("did not complete")
			}
		}
	})
	b.Run("m2-omega-combining", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m := combining.NewMachine(combining.NetConfig{Procs: 16, WaitBufCap: combining.Unbounded}, progs())
			if !m.Run(100000) {
				b.Fatal("did not complete")
			}
		}
	})
}

// ---- Path expression compilation ----

func BenchmarkCompilePath(b *testing.B) {
	const expr = "(open (read | write | append)* (sync | close))*"
	for i := 0; i < b.N; i++ {
		if _, err := combining.CompilePath(expr); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- The FAA queue under contention ----

func BenchmarkFAAQueue(b *testing.B) {
	mem := combining.NewNativeMemory()
	const n = 8
	perG := b.N/n + 1
	var wg sync.WaitGroup
	b.ResetTimer()
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			q := combining.NewFAAQueue(mem, 0, 64)
			if id%2 == 0 {
				for i := 0; i < perG; i++ {
					q.Enqueue(int64(i))
				}
			} else {
				for i := 0; i < perG; i++ {
					q.Dequeue()
				}
			}
		}(id)
	}
	wg.Wait()
}

// ---- Ladner–Fischer circuit family ----

func BenchmarkPrefixLadnerFischer(b *testing.B) {
	vals := make([]int64, 4096)
	for i := range vals {
		vals[i] = int64(i + 1)
	}
	for _, k := range []int{0, 2, 12} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				combining.LadnerFischer(combining.IntAdd(), vals, k)
			}
		})
	}
}

// ---- Software combining tree vs flat barrier ----

func BenchmarkSoftBarrier(b *testing.B) {
	const n = 16
	run := func(b *testing.B, await func(id int, mem combining.SharedMemory, rounds int)) {
		mem := combining.NewNativeMemory()
		rounds := b.N/n + 1
		var wg sync.WaitGroup
		b.ResetTimer()
		for id := 0; id < n; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				await(id, mem, rounds)
			}(id)
		}
		wg.Wait()
	}
	b.Run("flat-faa", func(b *testing.B) {
		run(b, func(id int, mem combining.SharedMemory, rounds int) {
			bar := combining.NewBarrier(mem, 0, n)
			for r := 0; r < rounds; r++ {
				bar.Await()
			}
		})
	})
	b.Run("software-tree-fanin2", func(b *testing.B) {
		run(b, func(id int, mem combining.SharedMemory, rounds int) {
			bar := combining.NewSoftBarrier(mem, 0, n, 2)
			for r := 0; r < rounds; r++ {
				bar.Await(id)
			}
		})
	})
	b.Run("software-tree-fanin4", func(b *testing.B) {
		run(b, func(id int, mem combining.SharedMemory, rounds int) {
			bar := combining.NewSoftBarrier(mem, 0, n, 4)
			for r := 0; r < rounds; r++ {
				bar.Await(id)
			}
		})
	})
}

// ---- Switch radix ablation ----

func BenchmarkRadix(b *testing.B) {
	for _, radix := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("k=%d", radix), func(b *testing.B) {
			var st combining.NetStats
			for i := 0; i < b.N; i++ {
				inj := make([]combining.Injector, 64)
				for p := 0; p < 64; p++ {
					inj[p] = combining.NewStochastic(p, 64, combining.TrafficConfig{
						Rate: 0.5, HotFraction: 0.25, Window: 4,
					}, uint64(i+1))
				}
				sim := combining.NewSim(combining.NetConfig{
					Procs: 64, Radix: radix, WaitBufCap: combining.Unbounded,
				}, inj)
				sim.Run(2000)
				st = sim.Stats()
			}
			b.ReportMetric(st.Bandwidth(), "ops/cycle")
			b.ReportMetric(st.MeanLatency(), "cycles/op")
			b.ReportMetric(st.Percentile(0.99), "p99-cycles")
		})
	}
}
